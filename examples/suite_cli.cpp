/**
 * @file
 * suite_cli: run any workload under any set of techniques from the
 * command line and emit a detailed report and/or CSV.
 *
 * Usage:
 *   suite_cli [--workload ALIAS|all] [--tech base,re,te,memo]
 *             [--frames N] [--width W --height H]
 *             [--hash crc32|xor|add|fnv] [--csv FILE] [--quiet]
 *
 * Examples:
 *   suite_cli --workload ccs --tech base,re
 *   suite_cli --workload all --tech base,re,te,memo --csv out.csv
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

struct CliOptions
{
    std::vector<std::string> workloads{"ccs"};
    std::vector<Technique> techniques{Technique::Baseline,
                                      Technique::RenderingElimination};
    u64 frames = 20;
    u32 width = 598, height = 384;
    HashKind hash = HashKind::Crc32;
    std::string csvPath;
    bool quiet = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: suite_cli [--workload ALIAS|all] "
                 "[--tech base,re,te,memo] [--frames N]\n"
                 "                 [--width W --height H] "
                 "[--hash crc32|xor|add|fnv] [--csv FILE] [--quiet]\n");
    std::exit(2);
}

Technique
parseTechnique(const std::string &name)
{
    if (name == "base" || name == "baseline")
        return Technique::Baseline;
    if (name == "re")
        return Technique::RenderingElimination;
    if (name == "te")
        return Technique::TransactionElimination;
    if (name == "memo")
        return Technique::FragmentMemoization;
    fatal("unknown technique: ", name);
}

HashKind
parseHash(const std::string &name)
{
    if (name == "crc32")
        return HashKind::Crc32;
    if (name == "xor")
        return HashKind::XorFold;
    if (name == "add")
        return HashKind::AddFold;
    if (name == "fnv")
        return HashKind::Fnv1a;
    fatal("unknown hash kind: ", name);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--workload") {
            std::string w = next(i);
            if (w == "all") {
                opts.workloads.clear();
                for (const auto &b : benchmarkSuite())
                    opts.workloads.push_back(b.alias);
            } else {
                opts.workloads = {w};
            }
        } else if (arg == "--tech") {
            opts.techniques.clear();
            std::stringstream ss(next(i));
            std::string item;
            while (std::getline(ss, item, ','))
                opts.techniques.push_back(parseTechnique(item));
        } else if (arg == "--frames") {
            opts.frames = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--width") {
            opts.width = static_cast<u32>(
                std::strtoul(next(i), nullptr, 10));
        } else if (arg == "--height") {
            opts.height = static_cast<u32>(
                std::strtoul(next(i), nullptr, 10));
        } else if (arg == "--hash") {
            opts.hash = parseHash(next(i));
        } else if (arg == "--csv") {
            opts.csvPath = next(i);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            usage();
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    CliOptions opts = parseArgs(argc, argv);

    std::ofstream csv;
    bool csvHeader = true;
    if (!opts.csvPath.empty()) {
        csv.open(opts.csvPath);
        if (!csv)
            fatal("cannot open csv file: ", opts.csvPath);
    }

    for (const std::string &alias : opts.workloads) {
        std::vector<SimResult> results;
        for (Technique tech : opts.techniques) {
            GpuConfig config;
            config.scaleResolution(opts.width, opts.height);
            config.technique = tech;
            auto scene = makeBenchmark(alias, config);
            SimOptions simOpts;
            simOpts.frames = opts.frames;
            simOpts.hashKind = opts.hash;
            Simulator sim(*scene, config, simOpts);
            SimResult r = sim.run();
            if (!opts.quiet) {
                printRunSummary(std::cout, r, config);
                std::cout << "\n";
            }
            if (csv.is_open()) {
                writeCsvRow(csv, r, csvHeader);
                csvHeader = false;
            }
            results.push_back(std::move(r));
        }
        if (!opts.quiet && results.size() > 1) {
            printComparison(std::cout, results);
            std::cout << "\n";
        }
    }
    if (csv.is_open())
        std::cout << "wrote " << opts.csvPath << "\n";
    return 0;
}
