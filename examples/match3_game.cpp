/**
 * @file
 * Domain example 1: a 2D match-3 puzzle session (the workload class
 * the paper's introduction motivates - simple scenes that still burn
 * real GPU power). Runs the full technique matrix and prints a
 * comparison, then shows the RE per-frame skip trace.
 */

#include <cstdio>
#include <memory>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

int
main()
{
    setInformEnabled(false);
    const u64 frames = 24;
    GpuConfig base;
    base.scaleResolution(598, 384); // half Table I resolution

    std::printf("match3_game: %llu frames at %ux%u (%u tiles)\n",
                static_cast<unsigned long long>(frames),
                base.screenWidth, base.screenHeight, base.numTiles());

    std::printf("\n%-10s %14s %14s %14s %12s\n", "technique",
                "cycles", "energy(mJ)", "dram(MB)", "fragsShaded");
    SimResult baseline;
    for (Technique tech : {Technique::Baseline,
                           Technique::TransactionElimination,
                           Technique::FragmentMemoization,
                           Technique::RenderingElimination}) {
        GpuConfig config = base;
        config.technique = tech;
        auto scene = makeBenchmark("ccs", config);
        SimOptions opts;
        opts.frames = frames;
        Simulator sim(*scene, config, opts);
        SimResult r = sim.run();
        if (tech == Technique::Baseline)
            baseline = r;
        std::printf("%-10s %14llu %14.2f %14.2f %12llu\n",
                    techniqueName(tech),
                    static_cast<unsigned long long>(r.totalCycles()),
                    r.energy.total() * 1e-9, r.traffic.total() / 1e6,
                    static_cast<unsigned long long>(r.fragmentsShaded));
    }

    // Per-frame skip trace under RE.
    GpuConfig config = base;
    config.technique = Technique::RenderingElimination;
    auto scene = makeBenchmark("ccs", config);
    SimOptions opts;
    opts.frames = frames;
    Simulator sim(*scene, config, opts);
    std::printf("\nper-frame tiles skipped by RE:\n");
    for (u64 f = 0; f < frames; f++) {
        FrameResult r = sim.stepFrame(f);
        u32 skipped = 0;
        for (const TileOutcome &t : r.tiles)
            skipped += t.rendered ? 0 : 1;
        std::printf("  frame %2llu: %4u / %u tiles skipped%s\n",
                    static_cast<unsigned long long>(f), skipped,
                    config.numTiles(),
                    f < 2 ? "  (history warming up)" : "");
    }
    return 0;
}
